(* Differential test for content-addressed state matching: the 128-bit
   fingerprint path (prefix-shared legal-state generation + digest
   membership) must agree with the historical string-matching oracle —
   same legal-state lists in the same order, the same per-state
   membership verdicts, and byte-identical rendered reports across
   repeated runs. The digest may only change speed, never results. *)

module D = Paracrash_core.Driver
module Session = Paracrash_core.Session
module Persist = Paracrash_core.Persist
module Explore = Paracrash_core.Explore
module Checker = Paracrash_core.Checker
module Legal = Paracrash_core.Legal
module Model = Paracrash_core.Model
module Pipeline = Paracrash_core.Pipeline
module R = Paracrash_core.Report
module Bitset = Paracrash_util.Bitset
module Dag = Paracrash_util.Dag
module Fp = Paracrash_util.Digestutil.Fp
module Logical = Paracrash_pfs.Logical
module State = Paracrash_vfs.State
module Op = Paracrash_vfs.Op
module P = Paracrash_pfs
module Registry = Paracrash_workloads.Registry
module Tracer = Paracrash_trace.Tracer

let check = Alcotest.check
let cb = Alcotest.bool
let cs = Alcotest.string
let csl = Alcotest.list Alcotest.string

(* --- fingerprint primitive ------------------------------------------------- *)

let test_fp_primitive () =
  let fp_of tokens =
    let st = Fp.init () in
    List.iter (Fp.add_string st) tokens;
    Fp.finish st
  in
  check cb "equal streams, equal fingerprints" true
    (Fp.equal (fp_of [ "ab"; "c" ]) (fp_of [ "ab"; "c" ]));
  check cb "length framing splits concatenation" false
    (Fp.equal (fp_of [ "ab"; "c" ]) (fp_of [ "a"; "bc" ]));
  check cb "distinct content, distinct fingerprints" false
    (Fp.equal (fp_of [ "ab" ]) (fp_of [ "ba" ]));
  check cb "of_string is init+add_string+finish" true
    (Fp.equal (Fp.of_string "paracrash") (fp_of [ "paracrash" ]));
  check Alcotest.int "hex rendering is 128 bits" 32
    (String.length (Fp.to_hex (fp_of [ "x" ])));
  check Alcotest.int "compare agrees with equal" 0
    (Fp.compare (fp_of [ "s" ]) (fp_of [ "s" ]))

(* --- add_subbytes / Scratch ------------------------------------------------ *)

let test_fp_subbytes_matches_add_string () =
  (* add_subbytes must absorb the exact token add_string would, at any
     offset and length (covering the 8-byte fast path and the tail) *)
  let payload = String.init 300 (fun i -> Char.chr (i mod 256)) in
  let b = Bytes.of_string ("xx" ^ payload ^ "yy") in
  List.iter
    (fun len ->
      let via_string =
        let st = Fp.init () in
        Fp.add_string st (String.sub payload 0 len);
        Fp.finish st
      in
      let via_bytes =
        let st = Fp.init () in
        Fp.add_subbytes st b ~pos:2 ~len;
        Fp.finish st
      in
      check cb
        (Printf.sprintf "len %d: subbytes = add_string" len)
        true
        (Fp.equal via_string via_bytes))
    [ 0; 1; 7; 8; 9; 63; 64; 65; 300 ];
  Alcotest.check_raises "out of bounds rejected"
    (Invalid_argument "Fp.add_subbytes") (fun () ->
      Fp.add_subbytes (Fp.init ()) b ~pos:2 ~len:(Bytes.length b))

let test_scratch_fp_matches_of_string () =
  let module Scratch = Paracrash_util.Digestutil.Scratch in
  let s = Scratch.create 4 in
  (* growth across the initial reservation, then clear-and-reuse *)
  Scratch.add_string s "H5 ok";
  Scratch.add_char s '\n';
  Scratch.add_string s (String.make 100 'D');
  check cs "contents" ("H5 ok\n" ^ String.make 100 'D') (Scratch.contents s);
  check cb "fp = of_string of contents" true
    (Fp.equal (Scratch.fp s) (Fp.of_string (Scratch.contents s)));
  Scratch.clear s;
  check Alcotest.int "clear resets length" 0 (Scratch.length s);
  Scratch.add_string s "other";
  check cb "reused scratch fingerprints fresh content" true
    (Fp.equal (Scratch.fp s) (Fp.of_string "other"))

(* --- vfs State fingerprints ----------------------------------------------- *)

let vfs_apply st op =
  match State.apply st op with
  | Ok st' -> st'
  | Error e -> Alcotest.failf "vfs apply: %s" (State.error_to_string e)

let vfs_state ops = List.fold_left vfs_apply State.empty ops

let test_vfs_fingerprint_matches_canonical () =
  let p = Paracrash_vfs.Vpath.normalize in
  (* states covering directories, hard links, contents and xattrs *)
  let creat path = Op.Creat { path = p path } in
  let write path off data = Op.Write { path = p path; off; data } in
  let states =
    [
      vfs_state [];
      vfs_state [ Op.Mkdir { path = p "/d" } ];
      vfs_state [ creat "/a"; write "/a" 0 "hello" ];
      vfs_state [ creat "/a"; write "/a" 0 "world" ];
      vfs_state [ creat "/a"; Op.Link { src = p "/a"; dst = p "/b" } ];
      vfs_state [ creat "/a"; creat "/b" ];
      vfs_state
        [ creat "/a"; Op.Setxattr { path = p "/a"; key = "user.k"; value = "v" } ];
      vfs_state
        [ creat "/a"; Op.Setxattr { path = p "/a"; key = "user.k"; value = "w" } ];
    ]
  in
  List.iteri
    (fun i si ->
      List.iteri
        (fun j sj ->
          check cb
            (Printf.sprintf "state %d vs %d: fp equal iff canonical equal" i j)
            (String.equal (State.canonical si) (State.canonical sj))
            (Fp.equal (State.fingerprint si) (State.fingerprint sj)))
        states)
    states

(* --- graceful enumeration truncation --------------------------------------- *)

let test_truncation_graceful () =
  (* 22 unordered ops: 2^22 subsets, over the 2^20 cap. The historical
     code raised Invalid_argument here; now the enumeration must stream
     the ascending-mask prefix and flag the cut. *)
  let b = Dag.Builder.create 22 in
  let graph = Dag.Builder.freeze b in
  let enum =
    Model.preserved_sets_seq Model.Baseline ~graph
      ~is_commit:(fun _ -> false)
      ~covered_by:(fun _ _ -> false)
  in
  check cb "over-cap enumeration is flagged truncated" true enum.Model.truncated;
  let first = List.of_seq (Seq.take 4 enum.Model.sets) in
  let expect =
    [ []; [ 0 ]; [ 1 ]; [ 0; 1 ] ]
    |> List.map (fun is ->
           let s = Bitset.create 22 in
           List.fold_left Bitset.add s is)
  in
  check cb "prefix keeps ascending mask order" true
    (List.for_all2 Bitset.equal expect first);
  (* a small enumeration is complete and unflagged *)
  let b = Dag.Builder.create 3 in
  let graph = Dag.Builder.freeze b in
  let enum =
    Model.preserved_sets_seq Model.Baseline ~graph
      ~is_commit:(fun _ -> false)
      ~covered_by:(fun _ _ -> false)
  in
  check cb "under-cap enumeration unflagged" false enum.Model.truncated;
  check Alcotest.int "under-cap enumeration complete" 8
    (Seq.length enum.Model.sets)

(* --- legal-state generation: prefix-shared = scratch ----------------------- *)

let session_of_spec (fs_entry : Registry.fs_entry) (spec : D.spec) =
  let config = P.Config.default in
  let tracer = Tracer.create () in
  let handle = fs_entry.Registry.make ~config ~tracer in
  Tracer.set_enabled tracer false;
  spec.D.preamble handle;
  let initial = P.Handle.snapshot handle in
  Tracer.set_enabled tracer true;
  spec.D.test handle;
  Tracer.set_enabled tracer false;
  Session.of_run ~handle ~initial

let test_legal_states_match_scratch_oracle () =
  List.iter
    (fun wname ->
      let spec = Option.get (Registry.find_workload wname) in
      List.iter
        (fun fs_entry ->
          let session = session_of_spec fs_entry spec in
          List.iter
            (fun model ->
              let cell =
                Printf.sprintf "%s/%s/%s" wname fs_entry.Registry.fs_name
                  (Model.to_string model)
              in
              let scratch = Checker.pfs_legal_states_scratch session model in
              let legal = Checker.pfs_legal_states session model in
              check csl
                (cell ^ ": same legal canonicals in the same order")
                scratch (Legal.canonicals legal);
              check cb (cell ^ ": not truncated") false (Legal.truncated legal))
            [ Model.Strict; Model.Commit; Model.Causal; Model.Baseline ])
        Registry.file_systems)
    Registry.workload_names

(* --- per-state membership: digest = string scan ---------------------------- *)

let max_verdict_states = 40

let rec take n = function
  | [] -> []
  | x :: tl -> if n <= 0 then [] else x :: take (n - 1) tl

let test_membership_matches_scan () =
  let spec_fs =
    [ ("ARVR", "beegfs"); ("ARVR", "lustre"); ("H5-create", "orangefs") ]
  in
  List.iter
    (fun (wname, fsname) ->
      let spec = Option.get (Registry.find_workload wname) in
      let fs_entry = Option.get (Registry.find_fs fsname) in
      let cell = Printf.sprintf "%s/%s" wname fsname in
      let session = session_of_spec fs_entry spec in
      let persist = Persist.build session in
      let states, _ = Explore.generate ~k:1 session ~persist in
      let states = take max_verdict_states states in
      let legal = Checker.pfs_legal_states session Model.Causal in
      let scratch = Checker.pfs_legal_states_scratch session Model.Causal in
      List.iter
        (fun (st : Explore.state) ->
          let _, view, _ =
            Checker.check session ~pfs_legal:legal st.Explore.persisted
          in
          let canon = Logical.canonical view in
          check cb
            (cell ^ ": digest membership equals canonical scan")
            (List.exists (String.equal canon) scratch)
            (Legal.mem legal (Logical.fingerprint view));
          check cb
            (cell ^ ": mem_scan agrees with the oracle list")
            (List.exists (String.equal canon) scratch)
            (Legal.mem_scan legal canon))
        states)
    spec_fs

(* --- whole-report determinism ---------------------------------------------- *)

let canonical_report (r : R.t) =
  R.to_json { r with R.perf = { r.R.perf with wall_seconds = 0. } }

let test_report_determinism () =
  let beegfs = Option.get (Registry.find_fs "beegfs") in
  List.iter
    (fun wname ->
      let spec = Option.get (Registry.find_workload wname) in
      let run () =
        let session = session_of_spec beegfs spec in
        let lib =
          Option.map
            (fun f ->
              f ~model:Pipeline.default_options.Pipeline.lib_model session)
            spec.D.lib
        in
        canonical_report
          (Pipeline.run Pipeline.default_options ~session ~lib ~workload:wname)
      in
      check cs (wname ^ ": two runs render identically") (run ()) (run ()))
    [ "ARVR"; "H5-create" ]

let tests =
  [
    ("fp: streaming fingerprint primitive", `Quick, test_fp_primitive);
    ("fp: add_subbytes = add_string", `Quick, test_fp_subbytes_matches_add_string);
    ("fp: scratch render buffer", `Quick, test_scratch_fp_matches_of_string);
    ( "vfs: fingerprint equivalence = canonical equivalence",
      `Quick,
      test_vfs_fingerprint_matches_canonical );
    ("model: over-cap enumeration degrades gracefully", `Quick, test_truncation_graceful);
    ( "legal states: prefix-shared = scratch oracle on every cell",
      `Quick,
      test_legal_states_match_scratch_oracle );
    ( "membership: digest lookup = canonical scan",
      `Quick,
      test_membership_matches_scan );
    ("reports: digest path renders deterministically", `Quick, test_report_determinism);
  ]
