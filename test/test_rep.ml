(* Representative-state pruning (--mode rep): crash states bucketed by
   behavioral signature, one full check per bucket, verified fallback
   for inconsistent buckets.

   The contracts under test:

   - bug equivalence: rep mode finds exactly the brute-force bug set
     (kind, layer, description, consequence) on every registry workload
     x file system — bucketing may only skip consistent states;
   - exactness vs optimized mode: rep shares optimized's visit order
     and prune learning, so its report matches optimized bug-for-bug
     including per-bug state counts, and checked + skipped in rep mode
     equals optimized's checked count;
   - determinism: signatures are pure functions of the traced workload
     (stable across fresh sessions and contexts), and rep reports are
     byte-identical across --jobs;
   - fallback: every member of a bucket whose representative is
     inconsistent is individually re-checked (counted in fallbacks and
     in states.checked — no bug rests on an unchecked state);
   - audit: --rep-audit re-checks sampled skipped members and finds no
     verdict mismatches on the seed corpus. *)

module C = Paracrash_core
module D = C.Driver
module R = C.Report
module Pipeline = C.Pipeline
module Explore = C.Explore
module Repsig = C.Repsig
module P = Paracrash_pfs
module W = Paracrash_workloads
module Registry = W.Registry

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let cs = Alcotest.string

(* Same truncation prefix as the scheduler determinism suite: full
   coverage on the small POSIX cells, truncated-but-representative
   coverage on the HDF5 cells, at test-suite cost. *)
let det_max_cuts = 15

let canonical (r : R.t) =
  R.to_json
    {
      r with
      R.perf =
        { r.R.perf with wall_seconds = 0.; modeled_seconds = 0.; restarts = 0 };
    }

(* Trace once, explore many times: only the exploration options vary
   between the runs each test compares. *)
let session_of fs_entry (spec : D.spec) =
  let tracer = Paracrash_trace.Tracer.create () in
  let handle = fs_entry.Registry.make ~config:P.Config.default ~tracer in
  Paracrash_trace.Tracer.set_enabled tracer false;
  spec.D.preamble handle;
  let initial = P.Handle.snapshot handle in
  Paracrash_trace.Tracer.set_enabled tracer true;
  spec.D.test handle;
  Paracrash_trace.Tracer.set_enabled tracer false;
  C.Session.of_run ~handle ~initial

let pipeline ?max_cuts ?rep_audit ~mode ~jobs session (spec : D.spec) =
  let options =
    {
      Pipeline.default_options with
      mode;
      jobs;
      max_cuts = Option.value ~default:det_max_cuts max_cuts;
      rep_audit;
    }
  in
  let lib =
    Option.map (fun f -> f ~model:options.Pipeline.lib_model session) spec.D.lib
  in
  Pipeline.run options ~session ~lib ~workload:spec.D.name

let metric r name = Option.value ~default:0 (R.metric r name)

(* The full identity of a bug: root cause, layer, rendering, observed
   consequence and the number of inconsistent states attributed to it. *)
let bug_identity (b : R.bug) =
  (b.R.kind, b.R.layer, b.R.description, b.R.consequence, b.R.states)

(* Visit-order-independent identity. Classification is order-sensitive
   by design (the first inconsistent state of a scenario names it, and
   [acc.explained] reuse depends on discovery order), and rep mode
   shares optimized mode's TSP visit order while brute force checks in
   generation order — so under truncation the same inconsistent states
   can be split across scenarios differently (observed on
   H5-create/beegfs at max_cuts=15, identically in optimized and rep
   modes). What no mode may change is which failures are surfaced:
   the (layer, consequence) pairs. *)
let coarse_bug_set (r : R.t) =
  List.sort_uniq compare
    (List.map (fun (b : R.bug) -> (b.R.layer, b.R.consequence)) r.R.bugs)

let pp_bug_set r =
  String.concat "\n" (List.map (fun b -> Fmt.str "%a" R.pp_bug b) r.R.bugs)

(* --- differential suite: rep vs optimized vs brute force ------------------- *)

(* Per workload x fs: rep mode must (a) match optimized mode bug-for-bug
   — same visit order, same prune learning, so bucketing may change
   nothing but the number of full checks; (b) surface exactly the
   failures brute force surfaces (coarse identity, since classification
   granularity is visit-order-dependent); (c) render byte-identical
   reports at jobs ∈ {1, 2, 4}. *)
let test_rep_equals_brute_fs fs_entry () =
  List.iter
    (fun pname ->
      let spec = Option.get (Registry.find_workload pname) in
      let session = session_of fs_entry spec in
      let cell = Printf.sprintf "%s/%s" pname fs_entry.Registry.fs_name in
      let brute = pipeline ~mode:D.Brute_force ~jobs:1 session spec in
      let opt = pipeline ~mode:D.Optimized ~jobs:1 session spec in
      let rep = pipeline ~mode:D.Representative ~jobs:1 session spec in
      if
        List.map bug_identity opt.R.bugs <> List.map bug_identity rep.R.bugs
      then
        Alcotest.failf "%s: rep bug table diverges from optimized\noptimized:\n%s\nrep:\n%s"
          cell (pp_bug_set opt) (pp_bug_set rep);
      if coarse_bug_set brute <> coarse_bug_set rep then
        Alcotest.failf
          "%s: rep surfaced failures diverge from brute force\nbrute:\n%s\nrep:\n%s"
          cell (pp_bug_set brute) (pp_bug_set rep);
      (* byte-identical rep reports across job counts extend both
         equivalences to jobs ∈ {2, 4} *)
      let serial = canonical rep in
      List.iter
        (fun jobs ->
          check cs
            (Printf.sprintf "%s rep jobs=%d" cell jobs)
            serial
            (canonical (pipeline ~mode:D.Representative ~jobs session spec)))
        [ 2; 4 ])
    Registry.workload_names

(* Quick single-cell variant so ci.sh -q still exercises the rep path. *)
let test_rep_equals_brute_quick () =
  let beegfs = Option.get (Registry.find_fs "beegfs") in
  test_rep_equals_brute_fs beegfs ()

(* --- exactness vs optimized mode ------------------------------------------ *)

(* Optimized mode checks every non-pruned state in the same TSP visit
   order rep mode uses, with the same prune learning (skipped states
   are consistent and never learn). So rep must reproduce optimized's
   bug table exactly — including per-bug state counts and discovery
   order — while checking only representatives and fallback members:
   checked + skipped = optimized checked. *)
let test_rep_matches_optimized () =
  let beegfs = Option.get (Registry.find_fs "beegfs") in
  List.iter
    (fun pname ->
      let spec = Option.get (Registry.find_workload pname) in
      let session = session_of beegfs spec in
      (* full depth: H5-resize has inconsistent buckets (fallbacks) only
         beyond the truncation prefix *)
      let opt =
        pipeline ~max_cuts:100_000 ~mode:D.Optimized ~jobs:1 session spec
      in
      let rep =
        pipeline ~max_cuts:100_000 ~mode:D.Representative ~jobs:1 session spec
      in
      check cb (pname ^ " bug tables equal incl. counts and order") true
        (List.map bug_identity opt.R.bugs = List.map bug_identity rep.R.bugs);
      check ci (pname ^ " pruned counts equal")
        (metric opt "states.pruned") (metric rep "states.pruned");
      check ci (pname ^ " inconsistent counts equal")
        (metric opt "states.inconsistent") (metric rep "states.inconsistent");
      check ci
        (pname ^ " rep checked + skipped covers optimized's checked")
        (metric opt "states.checked")
        (metric rep "states.checked" + metric rep "rep.members_skipped"))
    [ "H5-delete"; "H5-resize" ]

(* --- fallback on inconsistent representatives ------------------------------ *)

let test_rep_fallback_rechecks () =
  let beegfs = Option.get (Registry.find_fs "beegfs") in
  let spec = Option.get (Registry.find_workload "H5-resize") in
  let session = session_of beegfs spec in
  let rep =
    pipeline ~max_cuts:100_000 ~mode:D.Representative ~jobs:1 session spec
  in
  let buckets = metric rep "rep.buckets" in
  let skipped = metric rep "rep.members_skipped" in
  let fallbacks = metric rep "rep.fallbacks" in
  check cb "has inconsistent buckets (fallbacks observed)" true (fallbacks > 0);
  check cb "has consistent buckets (members skipped)" true (skipped > 0);
  (* every visited state is a representative, a skipped member or a
     re-checked fallback member; fallbacks are full checks *)
  check ci "checked = representatives + fallbacks"
    (buckets + fallbacks)
    (metric rep "states.checked");
  check ci "visited = checked + skipped"
    (metric rep "states.unique" - metric rep "states.pruned")
    (metric rep "states.checked" + skipped)

(* --- signature determinism ------------------------------------------------- *)

let test_signature_determinism () =
  let beegfs = Option.get (Registry.find_fs "beegfs") in
  let spec = Option.get (Registry.find_workload "H5-delete") in
  let signatures session =
    let persist = C.Persist.build session in
    let states, _ = Explore.generate ~k:1 session ~persist in
    let ctx = Repsig.create session in
    List.map
      (fun st ->
        (Repsig.Fp.to_hex (Repsig.signature ctx st), Repsig.shape ctx st))
      states
  in
  let s1 = session_of beegfs spec in
  let a = signatures s1 in
  (* a fresh context over the same session replays identical signatures
     (the cache is an optimization, not an input) *)
  let b = signatures s1 in
  (* and so does a freshly traced session: signatures are a pure
     function of the workload *)
  let c = signatures (session_of beegfs spec) in
  check cb "non-trivial state count" true (List.length a > 1);
  check cb "same session, fresh context" true (a = b);
  check cb "fresh session" true (a = c);
  (* distinct signatures exist (states do differ behaviorally) *)
  check cb "not all states equivalent" true
    (List.sort_uniq compare (List.map fst a) |> List.length > 1)

(* --- audit ----------------------------------------------------------------- *)

let test_rep_audit_zero_mismatches () =
  let beegfs = Option.get (Registry.find_fs "beegfs") in
  List.iter
    (fun pname ->
      let spec = Option.get (Registry.find_workload pname) in
      let session = session_of beegfs spec in
      let audited =
        pipeline ~max_cuts:100_000 ~rep_audit:3 ~mode:D.Representative ~jobs:1
          session spec
      in
      check cb (pname ^ " audit sampled some members") true
        (metric audited "rep.audit_checked" > 0);
      check ci (pname ^ " audit found no verdict mismatches") 0
        (metric audited "rep.audit_mismatches");
      (* auditing is measurement only: the report without the audit
         metrics is unchanged *)
      let plain =
        pipeline ~max_cuts:100_000 ~mode:D.Representative ~jobs:1 session spec
      in
      let strip (r : R.t) =
        canonical
          {
            r with
            R.metrics =
              List.filter
                (fun (k, _) -> not (String.length k >= 10 && String.sub k 0 10 = "rep.audit_"))
                r.R.metrics;
          }
      in
      check cs (pname ^ " audit does not perturb the report") (strip plain)
        (strip audited))
    [ "H5-delete"; "H5-resize" ]

(* --- generate_seq stats-thunk misuse (satellite) --------------------------- *)

let test_stats_thunk_misuse () =
  let beegfs = Option.get (Registry.find_fs "beegfs") in
  let spec = Option.get (Registry.find_workload "ARVR") in
  let session = session_of beegfs spec in
  let persist = C.Persist.build session in
  let states, stats =
    Explore.generate_seq ~caller:"Test_rep.misuse" ~k:1 session ~persist
  in
  (* reading stats before the sequence is consumed is a misuse, and the
     error names the offending call site *)
  (match stats () with
  | _ -> Alcotest.fail "stats before consumption should raise"
  | exception Invalid_argument msg ->
      check cb "error names the call site" true
        (Paracrash_util.Strutil.contains_sub msg "Test_rep.misuse");
      check cb "error explains the misuse" true
        (Paracrash_util.Strutil.contains_sub msg "fully consumed"));
  (* partial consumption is still a misuse *)
  (match states () with
  | Seq.Nil -> Alcotest.fail "expected at least one state"
  | Seq.Cons (_, _) -> ());
  (match stats () with
  | _ -> Alcotest.fail "stats after partial consumption should raise"
  | exception Invalid_argument _ -> ());
  (* NB: the sequence is ephemeral, but re-entering it from the start
     replays generation; full consumption unlocks the thunk *)
  Seq.iter ignore states;
  let s1 = stats () in
  check cb "stats available after full consumption" true (s1.Explore.n_cuts > 0);
  (* the thunk is idempotent: a second call returns equal stats *)
  check cb "second stats call returns equal stats" true (s1 = stats ())

let test_stats_thunk_default_caller () =
  let beegfs = Option.get (Registry.find_fs "beegfs") in
  let spec = Option.get (Registry.find_workload "ARVR") in
  let session = session_of beegfs spec in
  let persist = C.Persist.build session in
  let _, stats = Explore.generate_seq ~k:1 session ~persist in
  match stats () with
  | _ -> Alcotest.fail "stats before consumption should raise"
  | exception Invalid_argument msg ->
      check cb "default caller names generate_seq" true
        (Paracrash_util.Strutil.contains_sub msg "Explore.generate_seq")

(* --- runconfig / CLI plumbing ---------------------------------------------- *)

let test_runconfig_rep () =
  (match W.Runconfig.parse "mode = rep" with
  | Ok t ->
      check cb "mode rep parsed" true
        (t.W.Runconfig.options.D.mode = D.Representative)
  | Error m -> Alcotest.failf "unexpected parse error: %s" m);
  (match W.Runconfig.parse "rep_audit = 5" with
  | Ok t ->
      check cb "rep_audit parsed" true
        (t.W.Runconfig.options.D.rep_audit = Some 5)
  | Error m -> Alcotest.failf "unexpected parse error: %s" m);
  (match W.Runconfig.parse "" with
  | Ok t -> check cb "default no audit" true (t.W.Runconfig.options.D.rep_audit = None)
  | Error m -> Alcotest.failf "unexpected parse error: %s" m);
  check cb "zero rejected" true
    (Result.is_error (W.Runconfig.parse "rep_audit = 0"));
  check cb "garbage rejected" true
    (Result.is_error (W.Runconfig.parse "rep_audit = lots"))

let tests =
  [
    ("rep equals brute force (beegfs, all workloads)", `Quick, test_rep_equals_brute_quick);
    ("rep matches optimized exactly", `Quick, test_rep_matches_optimized);
    ("fallback re-checks inconsistent buckets", `Quick, test_rep_fallback_rechecks);
    ("signature determinism", `Quick, test_signature_determinism);
    ("rep-audit: zero mismatches on seed corpus", `Quick, test_rep_audit_zero_mismatches);
    ("generate_seq stats-thunk misuse", `Quick, test_stats_thunk_misuse);
    ("generate_seq stats-thunk default caller", `Quick, test_stats_thunk_default_caller);
    ("runconfig mode=rep / rep_audit", `Quick, test_runconfig_rep);
  ]
  @ List.filter_map
      (fun fs_entry ->
        if fs_entry.Registry.fs_name = "beegfs" then None
          (* beegfs runs in the quick set above *)
        else
          Some
            ( "rep equals brute force: " ^ fs_entry.Registry.fs_name,
              `Slow,
              test_rep_equals_brute_fs fs_entry ))
      Registry.file_systems
