(* Tests for the block device simulator. *)

module Op = Paracrash_blockdev.Op
module State = Paracrash_blockdev.State

let check = Alcotest.check
let cb = Alcotest.bool

let test_write_read () =
  let st = State.apply State.empty (Op.Scsi_write { lba = 7; data = "x"; what = "t" }) in
  check (Alcotest.option Alcotest.string) "read back" (Some "x") (State.read st 7);
  check (Alcotest.option Alcotest.string) "missing lba" None (State.read st 8)

let test_overwrite_last_wins () =
  let st =
    State.apply_all State.empty
      [
        Op.Scsi_write { lba = 1; data = "old"; what = "t" };
        Op.Scsi_write { lba = 1; data = "new"; what = "t" };
      ]
  in
  check (Alcotest.option Alcotest.string) "last write wins" (Some "new")
    (State.read st 1)

let test_sync_is_noop_on_state () =
  let st = State.apply State.empty (Op.Scsi_write { lba = 1; data = "a"; what = "t" }) in
  check cb "sync no-op" true (State.equal st (State.apply st Op.Scsi_sync))

let test_canonical_equality () =
  let a =
    State.apply_all State.empty
      [
        Op.Scsi_write { lba = 2; data = "b"; what = "t" };
        Op.Scsi_write { lba = 1; data = "a"; what = "t" };
      ]
  in
  let b =
    State.apply_all State.empty
      [
        Op.Scsi_write { lba = 1; data = "a"; what = "t" };
        Op.Scsi_write { lba = 2; data = "b"; what = "t" };
      ]
  in
  check cb "order of disjoint writes invisible" true (State.equal a b);
  check Alcotest.string "digest stable" (State.digest a) (State.digest b)

let prop_apply_subset_deterministic =
  QCheck.Test.make ~name:"block replay is deterministic" ~count:200
    QCheck.(list (pair (int_bound 20) (string_of_size (Gen.int_bound 6))))
    (fun writes ->
      let ops =
        List.map (fun (lba, data) -> Op.Scsi_write { lba; data; what = "w" }) writes
      in
      State.equal (State.apply_all State.empty ops) (State.apply_all State.empty ops))

(* --- per-block checksums (fault-injection support) ----------------------- *)

let test_checksums_clean_state () =
  let st =
    State.apply_all State.empty
      [
        Op.Scsi_write { lba = 1; data = "alpha"; what = "t" };
        Op.Scsi_write { lba = 2; data = "beta"; what = "t" };
      ]
  in
  check cb "apply keeps sums valid" true (State.verify st = []);
  check cb "block_ok on valid block" true (State.block_ok st 1);
  check cb "block_ok on absent lba" true (State.block_ok st 99);
  check cb "read_checked ok" true (State.read_checked st 1 = Some (Ok "alpha"));
  check cb "read_checked absent" true (State.read_checked st 99 = None)

let test_corrupt_detected () =
  let st = State.apply State.empty (Op.Scsi_write { lba = 5; data = "hello"; what = "t" }) in
  let bad = State.corrupt st 5 ~byte:1 ~bit:0 in
  check cb "payload changed" true (State.read bad 5 = Some "hdllo");
  check cb "block_ok false" false (State.block_ok bad 5);
  check cb "verify lists the lba" true
    (List.map fst (State.verify bad) = [ 5 ]);
  (match State.read_checked bad 5 with
  | Some (Error "hdllo") -> ()
  | _ -> Alcotest.fail "read_checked should return Error with the corrupt payload");
  (* a fresh write over the corrupt block heals it *)
  let healed = State.apply bad (Op.Scsi_write { lba = 5; data = "world"; what = "t" }) in
  check cb "rewrite heals" true (State.verify healed = [])

let test_corrupt_out_of_range_args () =
  let st = State.apply State.empty (Op.Scsi_write { lba = 1; data = "abc"; what = "t" }) in
  (* byte is taken mod the block length (including negatives), bit mod 8 *)
  let a = State.corrupt st 1 ~byte:(-7) ~bit:9 in
  check cb "negative byte / large bit still corrupt exactly one bit" true
    (not (State.block_ok a 1));
  check cb "absent lba is a no-op" true
    (State.equal st (State.corrupt st 42 ~byte:0 ~bit:0));
  (* corruption is invisible to canonical equality only if payloads match;
     a flipped bit IS a different device state *)
  check cb "corrupt state differs" false (State.equal st a)

let tests =
  [
    ("write and read", `Quick, test_write_read);
    ("overwrite: last write wins", `Quick, test_overwrite_last_wins);
    ("sync does not change state", `Quick, test_sync_is_noop_on_state);
    ("canonical equality", `Quick, test_canonical_equality);
    ("checksums: clean state verifies", `Quick, test_checksums_clean_state);
    ("checksums: corrupt is detected and healable", `Quick, test_corrupt_detected);
    ("checksums: corrupt argument handling", `Quick, test_corrupt_out_of_range_args);
    QCheck_alcotest.to_alcotest prop_apply_subset_deterministic;
  ]
