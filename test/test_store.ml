(* Persistent-store tests: Legal round-trip differential oracle,
   frame-codec inverses, crash-recovery (every interrupted-write
   prefix), bit-flip quarantine, fsck, corpus journal durability, and
   the checking service's kill-mid-batch / lost-work guarantees. *)

module Fp = Paracrash_util.Digestutil.Fp
module Rng = Paracrash_fault.Rng
module Tracer = Paracrash_trace.Tracer
module P = Paracrash_pfs
module D = Paracrash_core.Driver
module Model = Paracrash_core.Model
module Session = Paracrash_core.Session
module Checker = Paracrash_core.Checker
module Legal = Paracrash_core.Legal
module Engine = Paracrash_core.Engine
module Sweep = Paracrash_core.Sweep
module Report = Paracrash_core.Report
module W = Paracrash_workloads
module Registry = W.Registry
module Store = Paracrash_store.Store
module Service = Paracrash_store.Service

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cs = Alcotest.string
let csl = Alcotest.(list string)
let cso = Alcotest.(option string)

let tmpdir () =
  let d = Filename.temp_file "paracrash-store" "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let session_of ~fs ~program =
  let fs_entry = Option.get (Registry.find_fs fs) in
  let spec = Option.get (Registry.find_workload program) in
  let config = P.Config.default in
  let tracer = Tracer.create () in
  let handle = fs_entry.Registry.make ~config ~tracer in
  Tracer.set_enabled tracer false;
  spec.D.preamble handle;
  let initial = P.Handle.snapshot handle in
  Tracer.set_enabled tracer true;
  spec.D.test handle;
  Tracer.set_enabled tracer false;
  Session.of_run ~handle ~initial

(* --- Legal serialization: differential round-trip oracle ------------------ *)

(* Extract the stored fingerprints back out of the serialized text so
   [mem] can be probed without a structural-fp accessor on Legal.t. *)
let fps_of_serialized s =
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         match String.split_on_char ' ' line with
         | [ hex; _len ] -> Fp.of_hex hex
         | _ -> None)

(* For every workload x file system (x every model), the deserialized
   set must answer mem / cardinal / canonicals / truncated identically
   to the set it was serialized from. *)
let test_legal_round_trip_oracle () =
  List.iter
    (fun program ->
      List.iter
        (fun (fs_entry : Registry.fs_entry) ->
          let session = session_of ~fs:fs_entry.Registry.fs_name ~program in
          List.iter
            (fun model ->
              let cell =
                Printf.sprintf "%s/%s/%s" program fs_entry.Registry.fs_name
                  (Model.to_string model)
              in
              let legal = Checker.pfs_legal_states session model in
              let s = Legal.serialize legal in
              match Legal.deserialize s with
              | Error m -> Alcotest.failf "%s: deserialize failed: %s" cell m
              | Ok legal' ->
                  check ci (cell ^ ": cardinal") (Legal.cardinal legal)
                    (Legal.cardinal legal');
                  check cb (cell ^ ": truncated") (Legal.truncated legal)
                    (Legal.truncated legal');
                  check csl (cell ^ ": canonicals")
                    (Legal.canonicals legal) (Legal.canonicals legal');
                  let fps = fps_of_serialized s in
                  check ci (cell ^ ": every fingerprint recovered")
                    (Legal.cardinal legal) (List.length fps);
                  List.iter
                    (fun fp ->
                      check cb (cell ^ ": mem agrees (present)")
                        (Legal.mem legal fp) (Legal.mem legal' fp))
                    fps;
                  let absent = Fp.of_string "not-a-legal-state" in
                  check cb (cell ^ ": mem agrees (absent)")
                    (Legal.mem legal absent) (Legal.mem legal' absent);
                  check cs (cell ^ ": serialization is stable") s
                    (Legal.serialize legal'))
            [ Model.Strict; Model.Commit; Model.Causal; Model.Baseline ])
        Registry.file_systems)
    Registry.workload_names

let test_legal_deserialize_rejects_damage () =
  let legal = Legal.of_canonicals [ "state-a"; "state-b"; "state-c" ] in
  let s = Legal.serialize legal in
  let reject what s' =
    match Legal.deserialize s' with
    | Ok _ -> Alcotest.failf "%s: damaged payload accepted" what
    | Error _ -> ()
  in
  reject "empty" "";
  reject "bad magic" ("x" ^ s);
  (* every proper prefix must be rejected, not half-loaded *)
  for len = 0 to String.length s - 1 do
    reject (Printf.sprintf "prefix %d" len) (String.sub s 0 len)
  done;
  reject "trailing bytes" (s ^ "extra");
  (* round trip still fine *)
  match Legal.deserialize s with
  | Ok legal' -> check csl "intact round trip"
      (Legal.canonicals legal) (Legal.canonicals legal')
  | Error m -> Alcotest.failf "intact payload rejected: %s" m

(* --- frame codec ---------------------------------------------------------- *)

let test_frame_codec_round_trip () =
  List.iter
    (fun payload ->
      let frame = Store.encode_entry ~key:"legal/abc123" payload in
      match Store.decode_entry ~key:"legal/abc123" frame with
      | Ok p -> check cs "payload survives" payload p
      | Error m -> Alcotest.failf "decode failed: %s" m)
    [ ""; "x"; "hello\nworld\n"; String.init 4096 (fun i -> Char.chr (i land 0xff)) ]

let test_frame_codec_rejects_wrong_key () =
  let frame = Store.encode_entry ~key:"legal/abc" "payload" in
  match Store.decode_entry ~key:"legal/other" frame with
  | Ok _ -> Alcotest.fail "frame accepted under the wrong key"
  | Error m -> check cb "key mismatch named" true
      (String.length m > 0)

(* --- store basics --------------------------------------------------------- *)

let test_store_put_get () =
  let t = Store.open_ ~dir:(tmpdir ()) in
  check cso "absent key" None (Store.get t ~ns:"legal" ~key:"k1");
  Store.put t ~ns:"legal" ~key:"k1" "payload-1";
  check cso "round trip" (Some "payload-1") (Store.get t ~ns:"legal" ~key:"k1");
  check cb "mem" true (Store.mem t ~ns:"legal" ~key:"k1");
  let w = (Store.stats t).Store.writes in
  Store.put t ~ns:"legal" ~key:"k1" "payload-1";
  check ci "idempotent put skips the write" w (Store.stats t).Store.writes;
  Store.put t ~ns:"legal" ~key:"k0" "payload-0";
  check csl "keys sorted" [ "k0"; "k1" ] (Store.keys t ~ns:"legal");
  check csl "other namespace empty" [] (Store.keys t ~ns:"job");
  let s = Store.stats t in
  check ci "one miss" 1 s.Store.misses;
  check ci "one hit" 1 s.Store.hits

let test_store_reopen_persists () =
  let dir = tmpdir () in
  let t = Store.open_ ~dir in
  Store.put t ~ns:"job" ~key:"aa" "result";
  let t' = Store.open_ ~dir in
  check cso "entry survives reopen" (Some "result")
    (Store.get t' ~ns:"job" ~key:"aa")

(* --- crash recovery: interrupted-write prefixes --------------------------- *)

let write_raw path data =
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc data)

let entry_file dir ~ns ~key =
  Filename.concat (Filename.concat (Filename.concat dir "objects") ns) key

(* Replay every prefix of the entry byte stream as if the writer died
   mid-write with the bytes already at their final path (a stronger
   adversary than the tmp+rename protocol ever allows): each prefix
   must reopen cleanly, never be served, and be quarantined so a fresh
   put works again. *)
let test_store_recovers_from_every_torn_prefix () =
  let dir = tmpdir () in
  let payload = "legal-states payload \xff\x00 with framing" in
  let full = Store.encode_entry ~key:"legal/torn" payload in
  let t0 = Store.open_ ~dir in
  Store.put t0 ~ns:"legal" ~key:"other" "untouched neighbour";
  for len = 0 to String.length full - 1 do
    let t = Store.open_ ~dir in
    write_raw (entry_file dir ~ns:"legal" ~key:"torn") (String.sub full 0 len);
    check cso
      (Printf.sprintf "prefix %d never served" len)
      None
      (Store.get t ~ns:"legal" ~key:"torn");
    check cb
      (Printf.sprintf "prefix %d quarantined" len)
      false
      (Sys.file_exists (entry_file dir ~ns:"legal" ~key:"torn"));
    check cso
      (Printf.sprintf "prefix %d leaves neighbour intact" len)
      (Some "untouched neighbour")
      (Store.get t ~ns:"legal" ~key:"other")
  done;
  (* after the carnage, a clean write is served again *)
  let t = Store.open_ ~dir in
  Store.put t ~ns:"legal" ~key:"torn" payload;
  check cso "clean rewrite served" (Some payload)
    (Store.get t ~ns:"legal" ~key:"torn")

let test_store_sweeps_tmp_leftovers () =
  let dir = tmpdir () in
  let t = Store.open_ ~dir in
  Store.put t ~ns:"legal" ~key:"kept" "kept";
  (* a writer died before its rename: partial frame still in tmp/ *)
  let leftover = Filename.concat (Filename.concat dir "tmp") "legal-halfway" in
  write_raw leftover (String.sub (Store.encode_entry ~key:"legal/halfway" "x") 0 10);
  let t' = Store.open_ ~dir in
  check cb "tmp leftover swept" false (Sys.file_exists leftover);
  check cb "interrupted write left no entry" false
    (Store.mem t' ~ns:"legal" ~key:"halfway");
  check cso "durable entry survives" (Some "kept")
    (Store.get t' ~ns:"legal" ~key:"kept")

(* --- bit flips ------------------------------------------------------------ *)

(* Flip one seeded-chosen bit in every byte position of the frame: the
   CRC (or a field check) must catch each, quarantine the entry and
   never return damaged bytes. lib/fault's RNG picks the bit, so the
   sweep is deterministic yet not biased to one bit lane. *)
let test_store_bit_flips_quarantined () =
  let dir = tmpdir () in
  let payload = "bit-flip victim payload: legal states ahoy" in
  let full = Store.encode_entry ~key:"image/victim" payload in
  let t0 = Store.open_ ~dir in
  Store.put t0 ~ns:"image" ~key:"victim" payload;
  for pos = 0 to String.length full - 1 do
    let bit = Rng.hash ~seed:0x5eed pos land 7 in
    let b = Bytes.of_string full in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
    let t = Store.open_ ~dir in
    write_raw (entry_file dir ~ns:"image" ~key:"victim") (Bytes.to_string b);
    (match Store.get t ~ns:"image" ~key:"victim" with
    | None -> ()
    | Some served ->
        (* the flip hit a byte the payload checks can't distinguish only
           if the payload itself is untouched *)
        check cs (Printf.sprintf "flip at %d bit %d must not corrupt" pos bit)
          payload served);
    (* restore for the next position *)
    if not (Sys.file_exists (entry_file dir ~ns:"image" ~key:"victim")) then
      Store.put t ~ns:"image" ~key:"victim" payload
  done;
  (* decode-level: every single-bit flip inside the frame is caught *)
  for pos = 0 to String.length full - 1 do
    for bit = 0 to 7 do
      let b = Bytes.of_string full in
      Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
      match Store.decode_entry ~key:"image/victim" (Bytes.to_string b) with
      | Ok served ->
          Alcotest.failf "flip at byte %d bit %d went undetected (%S)" pos bit
            served
      | Error _ -> ()
    done
  done

(* --- fsck ----------------------------------------------------------------- *)

let test_fsck_finds_and_quarantines_damage () =
  let dir = tmpdir () in
  let t = Store.open_ ~dir in
  Store.put t ~ns:"legal" ~key:"good1" "payload one";
  Store.put t ~ns:"legal" ~key:"good2" "payload two";
  Store.put t ~ns:"job" ~key:"good3" "payload three";
  Store.put t ~ns:"job" ~key:"bad-torn" "will be torn";
  Store.put t ~ns:"image" ~key:"bad-flip" "will be flipped";
  (* damage two entries behind the store's back *)
  let torn_path = entry_file dir ~ns:"job" ~key:"bad-torn" in
  let torn = In_channel.with_open_bin torn_path In_channel.input_all in
  write_raw torn_path (String.sub torn 0 (String.length torn - 3));
  let flip_path = entry_file dir ~ns:"image" ~key:"bad-flip" in
  let flip = Bytes.of_string (In_channel.with_open_bin flip_path In_channel.input_all) in
  Bytes.set flip 20 (Char.chr (Char.code (Bytes.get flip 20) lxor 0x10));
  write_raw flip_path (Bytes.to_string flip);
  let r = Store.fsck t in
  check ci "checked all entries" 5 r.Store.checked;
  check ci "three valid" 3 r.Store.valid;
  check csl "damage identified"
    [ "image/bad-flip"; "job/bad-torn" ]
    (List.map (fun e -> e.Store.e_ns ^ "/" ^ e.Store.e_key) r.Store.bad);
  check cb "torn entry quarantined" false (Sys.file_exists torn_path);
  check cb "flipped entry quarantined" false (Sys.file_exists flip_path);
  let r2 = Store.fsck t in
  check ci "second pass clean" 3 r2.Store.checked;
  check ci "second pass all valid" 3 r2.Store.valid;
  check ci "second pass no damage" 0 (List.length r2.Store.bad)

(* --- corpus journal durability -------------------------------------------- *)

let test_corpus_creation_atomic_and_synced () =
  let dir = tmpdir () in
  let c = Sweep.Corpus.open_ ~dir ~header:"sweep t" in
  check cb "no tmp staging left behind" false
    (Sys.file_exists (Filename.concat dir "journal.tmp"));
  let o = { Sweep.fingerprint = String.make 32 'a'; bugs = 1; inconsistent = 2 } in
  Sweep.Corpus.record c "id1" o;
  Sweep.Corpus.sync c;
  Sweep.Corpus.record c "id2" o;
  Sweep.Corpus.close c;
  let c' = Sweep.Corpus.open_ ~dir ~header:"sweep t" in
  check ci "entries survive" 2 (Sweep.Corpus.cardinal c');
  check cb "id1 present" true (Sweep.Corpus.mem c' "id1");
  check cb "id2 present" true (Sweep.Corpus.mem c' "id2");
  Sweep.Corpus.close c'

(* --- legal cache through the pipeline ------------------------------------- *)

let legal_cache_of store =
  {
    Engine.lc_lookup = (fun ~key -> Store.get store ~ns:"legal" ~key);
    lc_save = (fun ~key payload -> Store.put store ~ns:"legal" ~key payload);
  }

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

(* Everything measured or work-accounting: wall time, and the
   legal-replay counters, which truthfully report zero replay work when
   the set came from the store. *)
let strip_measured json =
  String.split_on_char '\n' json
  |> List.filter (fun l ->
         not (contains l "\"perf\"" || contains l "legal.replay"))
  |> String.concat "\n"

(* Cold (computing and saving) and warm (served from the store) runs
   must produce identical verdicts: same bugs, counts and deterministic
   metrics — only wall time and the replay work accounting (zero on a
   store hit) may differ. *)
let test_legal_cache_reports_identical () =
  let dir = tmpdir () in
  let cfg = W.Config.default in
  let store = Store.open_ ~dir in
  let cold, _ = W.Config.run ~legal_cache:(legal_cache_of store) cfg "ARVR" in
  check cb "cold run saved a legal set" true
    (Store.keys store ~ns:"legal" <> []);
  let store' = Store.open_ ~dir in
  let warm, _ = W.Config.run ~legal_cache:(legal_cache_of store') cfg "ARVR" in
  check cb "warm run hit the store" true ((Store.stats store').Store.hits > 0);
  check ci "warm run wrote nothing" 0 (Store.stats store').Store.writes;
  check cs "same outcome fingerprint"
    (Sweep.outcome_of_report cold).Sweep.fingerprint
    (Sweep.outcome_of_report warm).Sweep.fingerprint;
  check cs "reports identical outside measurement"
    (strip_measured (Report.to_json cold))
    (strip_measured (Report.to_json warm))

(* --- the checking service ------------------------------------------------- *)

let batch = [ ("beegfs", "ARVR"); ("beegfs", "CR"); ("ext4", "RC") ]

let outcomes (r : Service.batch_result) =
  List.map
    (fun (c : Service.completed) ->
      Printf.sprintf "%s/%s:%s" c.Service.c_fs c.Service.c_program
        (match c.Service.c_outcome with
        | Service.Fresh -> "fresh"
        | Service.Cached -> "cached"))
    r.Service.completed

let test_service_batch_then_cached_resubmit () =
  let dir = tmpdir () in
  let svc = Service.create ~store:(Store.open_ ~dir) ~config:W.Config.default in
  let r1 = Service.run_batch svc batch in
  check csl "first submission all fresh"
    [ "beegfs/ARVR:fresh"; "beegfs/CR:fresh"; "ext4/RC:fresh" ]
    (outcomes r1);
  check ci "no errors" 0 (List.length r1.Service.errors);
  check ci "nothing drained" 0 r1.Service.drained;
  (* resubmission, fresh process: everything served from the store *)
  let svc2 = Service.create ~store:(Store.open_ ~dir) ~config:W.Config.default in
  let r2 = Service.run_batch svc2 batch in
  check csl "resubmission fully cached"
    [ "beegfs/ARVR:cached"; "beegfs/CR:cached"; "ext4/RC:cached" ]
    (outcomes r2);
  (* cached reports are the same bytes the fresh run produced *)
  List.iter2
    (fun (a : Service.completed) (b : Service.completed) ->
      check cs "report bytes stable" a.Service.c_record.Service.r_report
        b.Service.c_record.Service.r_report)
    r1.Service.completed r2.Service.completed

let test_service_crash_mid_batch_loses_nothing () =
  let dir = tmpdir () in
  let svc = Service.create ~store:(Store.open_ ~dir) ~config:W.Config.default in
  (match Service.run_batch ~crash_after:1 svc batch with
  | _ -> Alcotest.fail "crash hook did not fire"
  | exception Service.Crash_requested n -> check ci "crashed after 1 job" 1 n);
  (* restart: the completed job is durable, the resubmission re-runs
     only what the crash interrupted *)
  let svc2 = Service.create ~store:(Store.open_ ~dir) ~config:W.Config.default in
  let r = Service.run_batch svc2 batch in
  check csl "completed job survives the kill; rest recomputed"
    [ "beegfs/ARVR:cached"; "beegfs/CR:fresh"; "ext4/RC:fresh" ]
    (outcomes r);
  check ci "no completed job lost" 3 (List.length r.Service.completed)

let test_service_drain_marks_remaining () =
  let dir = tmpdir () in
  let svc = Service.create ~store:(Store.open_ ~dir) ~config:W.Config.default in
  Service.request_drain svc;
  let r = Service.run_batch svc batch in
  check ci "nothing attempted" 0 (List.length r.Service.completed);
  check ci "all drained" 3 r.Service.drained

let test_service_job_key_covers_options () =
  let cfg = W.Config.default in
  let k1 = Service.job_key cfg ~fs:"beegfs" ~program:"ARVR" in
  let k2 = Service.job_key cfg ~fs:"beegfs" ~program:"CR" in
  let k3 = Service.job_key cfg ~fs:"lustre" ~program:"ARVR" in
  let cfg_k2 =
    { cfg with W.Config.options = { cfg.W.Config.options with D.k = 2 } }
  in
  let k4 = Service.job_key cfg_k2 ~fs:"beegfs" ~program:"ARVR" in
  let cfg_jobs =
    { cfg with W.Config.options = { cfg.W.Config.options with D.jobs = 4 } }
  in
  let k5 = Service.job_key cfg_jobs ~fs:"beegfs" ~program:"ARVR" in
  check cb "program distinguishes" true (k1 <> k2);
  check cb "fs distinguishes" true (k1 <> k3);
  check cb "options distinguish" true (k1 <> k4);
  check cs "worker count does not (determinism contract)" k1 k5

let test_parse_batch () =
  (match Service.parse_batch "beegfs ARVR\n# comment\n\n  ext4   RC  \n" with
  | Ok jobs ->
      check csl "parsed"
        [ "beegfs/ARVR"; "ext4/RC" ]
        (List.map (fun (f, p) -> f ^ "/" ^ p) jobs)
  | Error m -> Alcotest.failf "parse failed: %s" m);
  match Service.parse_batch "beegfs ARVR extra\n" with
  | Ok _ -> Alcotest.fail "malformed line accepted"
  | Error _ -> ()

let test_job_record_round_trip () =
  let r =
    {
      Service.r_fs = "beegfs";
      r_program = "ARVR";
      r_image = Some (String.make 32 'f');
      r_report = "{\n  \"multi\": \"line\"\n}";
    }
  in
  (match Service.job_record_of_string (Service.job_record_to_string r) with
  | Ok r' -> check cb "round trip" true (r = r')
  | Error m -> Alcotest.failf "job record round trip failed: %s" m);
  match Service.job_record_of_string "garbage" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ()

let tests =
  [
    Alcotest.test_case "legal: serialize/deserialize round-trip oracle" `Slow
      test_legal_round_trip_oracle;
    Alcotest.test_case "legal: damaged payloads rejected" `Quick
      test_legal_deserialize_rejects_damage;
    Alcotest.test_case "frame: codec round trip" `Quick test_frame_codec_round_trip;
    Alcotest.test_case "frame: wrong key rejected" `Quick
      test_frame_codec_rejects_wrong_key;
    Alcotest.test_case "store: put/get/mem/keys" `Quick test_store_put_get;
    Alcotest.test_case "store: entries survive reopen" `Quick
      test_store_reopen_persists;
    Alcotest.test_case "store: every torn prefix recovered" `Quick
      test_store_recovers_from_every_torn_prefix;
    Alcotest.test_case "store: tmp leftovers swept on open" `Quick
      test_store_sweeps_tmp_leftovers;
    Alcotest.test_case "store: bit flips caught and quarantined" `Quick
      test_store_bit_flips_quarantined;
    Alcotest.test_case "store: fsck finds and quarantines damage" `Quick
      test_fsck_finds_and_quarantines_damage;
    Alcotest.test_case "corpus: atomic creation, synced appends" `Quick
      test_corpus_creation_atomic_and_synced;
    Alcotest.test_case "pipeline: legal cache keeps reports identical" `Quick
      test_legal_cache_reports_identical;
    Alcotest.test_case "service: batch then fully-cached resubmit" `Quick
      test_service_batch_then_cached_resubmit;
    Alcotest.test_case "service: kill mid-batch loses no completed job" `Quick
      test_service_crash_mid_batch_loses_nothing;
    Alcotest.test_case "service: drain skips remaining jobs" `Quick
      test_service_drain_marks_remaining;
    Alcotest.test_case "service: job key covers inputs, not worker count" `Quick
      test_service_job_key_covers_options;
    Alcotest.test_case "service: batch file parsing" `Quick test_parse_batch;
    Alcotest.test_case "service: job record round trip" `Quick
      test_job_record_round_trip;
  ]
