(* Unit and property tests for the utility layer: bitsets, DAGs
   (reachability, topological order, downset enumeration) and
   combinatorics. *)

module Bitset = Paracrash_util.Bitset
module Dag = Paracrash_util.Dag
module Combi = Paracrash_util.Combi
module Strutil = Paracrash_util.Strutil

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool

(* reference implementations for the SWAR popcount and the
   skip-zero-words element walk: probe every index with [mem] *)
let naive_cardinal s =
  let n = ref 0 in
  for i = 0 to Bitset.capacity s - 1 do
    if Bitset.mem s i then incr n
  done;
  !n

let naive_elements s =
  List.filter (Bitset.mem s) (List.init (Bitset.capacity s) Fun.id)

(* --- Bitset ------------------------------------------------------------ *)

let test_bitset_basics () =
  let s = Bitset.create 10 in
  check cb "empty has no members" false (Bitset.mem s 3);
  let s = Bitset.add s 3 in
  check cb "mem after add" true (Bitset.mem s 3);
  check ci "cardinal" 1 (Bitset.cardinal s);
  let s' = Bitset.remove s 3 in
  check cb "removed" false (Bitset.mem s' 3);
  check cb "original unchanged (persistent)" true (Bitset.mem s 3)

let test_bitset_setops () =
  let a = Bitset.of_list 8 [ 0; 2; 4 ] in
  let b = Bitset.of_list 8 [ 2; 3 ] in
  check (Alcotest.list ci) "union" [ 0; 2; 3; 4 ]
    (Bitset.elements (Bitset.union a b));
  check (Alcotest.list ci) "inter" [ 2 ] (Bitset.elements (Bitset.inter a b));
  check (Alcotest.list ci) "diff" [ 0; 4 ] (Bitset.elements (Bitset.diff a b));
  check cb "subset yes" true (Bitset.subset (Bitset.of_list 8 [ 2 ]) b);
  check cb "subset no" false (Bitset.subset a b)

let test_bitset_wide () =
  (* crosses the 62-bit word boundary *)
  let s = Bitset.of_list 200 [ 0; 61; 62; 63; 124; 199 ] in
  check ci "cardinal across words" 6 (Bitset.cardinal s);
  check (Alcotest.list ci) "elements sorted" [ 0; 61; 62; 63; 124; 199 ]
    (Bitset.elements s);
  check cb "full contains all" true
    (Bitset.subset s (Bitset.full 200));
  check ci "full cardinal" 200 (Bitset.cardinal (Bitset.full 200))

let test_bitset_bounds () =
  let s = Bitset.create 4 in
  Alcotest.check_raises "add out of range"
    (Invalid_argument "Bitset: index out of range") (fun () ->
      ignore (Bitset.add s 4));
  Alcotest.check_raises "negative" (Invalid_argument "Bitset: index out of range")
    (fun () -> ignore (Bitset.mem s (-1)))

let test_bitset_popcount_pinned () =
  (* word patterns that exercise the SWAR carry chains: empty, single
     bits at word edges, alternating bits, full words, full set *)
  let cases =
    [
      [];
      [ 0 ];
      [ 61 ];
      [ 62 ];
      [ 123 ];
      [ 0; 61; 62; 123; 124; 185 ];
      List.init 93 (fun i -> 2 * i);
      List.init 186 Fun.id;
    ]
  in
  List.iter
    (fun xs ->
      let s = Bitset.of_list 186 xs in
      check ci "cardinal = naive" (naive_cardinal s) (Bitset.cardinal s);
      check (Alcotest.list ci) "elements = naive" (naive_elements s)
        (Bitset.elements s))
    cases;
  check ci "full 186" 186 (Bitset.cardinal (Bitset.full 186))

let bitset_prop_popcount_matches_naive =
  QCheck.Test.make ~name:"cardinal/elements agree with naive mem-walk"
    ~count:300
    QCheck.(list (int_bound 185))
    (fun xs ->
      let s = Bitset.of_list 186 xs in
      Bitset.cardinal s = naive_cardinal s
      && Bitset.elements s = naive_elements s)

let test_bitset_tbl () =
  let tbl = Bitset.Tbl.create 16 in
  let a = Bitset.of_list 100 [ 1; 63; 99 ] in
  Bitset.Tbl.replace tbl a "a";
  (* an equal set built by a different op sequence must hit *)
  let a' = Bitset.remove (Bitset.of_list 100 [ 1; 2; 63; 99 ]) 2 in
  check cb "equal key found" true (Bitset.Tbl.find_opt tbl a' = Some "a");
  check cb "different key absent" true
    (Bitset.Tbl.find_opt tbl (Bitset.of_list 100 [ 1 ]) = None)

(* --- Bitset.Pack (SoA rows) -------------------------------------------- *)

let test_bitset_pack_rows () =
  let p = Bitset.Pack.create ~cap:130 ~rows:3 in
  check ci "cap" 130 (Bitset.Pack.cap p);
  check ci "rows" 3 (Bitset.Pack.rows p);
  check cb "rows start empty" true (Bitset.Pack.row_is_empty p 1);
  let a = Bitset.of_list 130 [ 0; 63; 64; 129 ] in
  Bitset.Pack.set p 1 a;
  check cb "set/get roundtrip" true (Bitset.equal (Bitset.Pack.get p 1) a);
  check cb "other rows untouched" true
    (Bitset.Pack.row_is_empty p 0 && Bitset.Pack.row_is_empty p 2);
  (* in-place intersection matches the pure operation *)
  let b = Bitset.of_list 130 [ 63; 64; 100 ] in
  Bitset.Pack.inter_into p 2 a b;
  check cb "inter_into = inter" true
    (Bitset.equal (Bitset.Pack.get p 2) (Bitset.inter a b));
  (* the allocation-free compare answers equal (get p i) (inter a b) *)
  check cb "row_equals_inter yes" true (Bitset.Pack.row_equals_inter p 2 a b);
  check cb "row_equals_inter no" false (Bitset.Pack.row_equals_inter p 1 a b);
  check cb "row_equal" true
    (Bitset.Pack.row_equal p 1 1 && not (Bitset.Pack.row_equal p 1 2));
  (* iter_row visits members in increasing order without materializing *)
  let seen = ref [] in
  Bitset.Pack.iter_row (fun i -> seen := i :: !seen) p 2;
  check (Alcotest.list ci) "iter_row order" [ 63; 64 ] (List.rev !seen);
  (* capacity mismatch is rejected *)
  Alcotest.check_raises "set cap mismatch"
    (Invalid_argument "Bitset.Pack: capacity mismatch") (fun () ->
      Bitset.Pack.set p 0 (Bitset.create 10));
  (* cap-0 packs: every row op is vacuous rather than out of bounds *)
  let z = Bitset.Pack.create ~cap:0 ~rows:2 in
  Bitset.Pack.inter_into z 0 (Bitset.create 0) (Bitset.create 0);
  check cb "cap-0 row empty" true (Bitset.Pack.row_is_empty z 0);
  check cb "cap-0 equals inter" true
    (Bitset.Pack.row_equals_inter z 1 (Bitset.create 0) (Bitset.create 0))

let bitset_pack_prop_matches_pure =
  QCheck.Test.make ~name:"pack row ops agree with pure bitset ops" ~count:200
    QCheck.(pair (list (int_bound 90)) (list (int_bound 90)))
    (fun (xs, ys) ->
      let a = Bitset.of_list 91 xs and b = Bitset.of_list 91 ys in
      let p = Bitset.Pack.create ~cap:91 ~rows:2 in
      Bitset.Pack.inter_into p 0 a b;
      Bitset.Pack.set p 1 (Bitset.inter a b);
      Bitset.equal (Bitset.Pack.get p 0) (Bitset.inter a b)
      && Bitset.Pack.row_equals_inter p 1 a b
      && Bitset.Pack.row_equal p 0 1
      && Bitset.Pack.row_is_empty p 0 = Bitset.is_empty (Bitset.inter a b))

let bitset_prop_roundtrip =
  QCheck.Test.make ~name:"bitset elements/of_list roundtrip" ~count:200
    QCheck.(list (int_bound 63))
    (fun xs ->
      let s = Bitset.of_list 64 xs in
      Bitset.elements s = List.sort_uniq Int.compare xs)

let bitset_prop_ops_match_lists =
  QCheck.Test.make ~name:"bitset set ops agree with list model" ~count:200
    QCheck.(pair (list (int_bound 40)) (list (int_bound 40)))
    (fun (xs, ys) ->
      let module IS = Set.Make (Int) in
      let a = Bitset.of_list 41 xs and b = Bitset.of_list 41 ys in
      let sa = IS.of_list xs and sb = IS.of_list ys in
      Bitset.elements (Bitset.union a b) = IS.elements (IS.union sa sb)
      && Bitset.elements (Bitset.inter a b) = IS.elements (IS.inter sa sb)
      && Bitset.elements (Bitset.diff a b) = IS.elements (IS.diff sa sb)
      && Bitset.subset a b = IS.subset sa sb)

(* --- Dag ---------------------------------------------------------------- *)

let diamond () =
  (* 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3 *)
  let b = Dag.Builder.create 4 in
  Dag.Builder.add_edge b 0 1;
  Dag.Builder.add_edge b 0 2;
  Dag.Builder.add_edge b 1 3;
  Dag.Builder.add_edge b 2 3;
  Dag.Builder.freeze b

let test_dag_reach () =
  let g = diamond () in
  check cb "0 before 3" true (Dag.happens_before g 0 3);
  check cb "1 not before 2" false (Dag.happens_before g 1 2);
  check cb "3 not before 0" false (Dag.happens_before g 3 0);
  check cb "reflexive reaches" true (Dag.reaches g 2 2);
  check cb "strict hb not reflexive" false (Dag.happens_before g 2 2)

let test_dag_topo () =
  let g = diamond () in
  let order = Dag.topological g in
  check ci "topo length" 4 (List.length order);
  let pos x = Option.get (List.find_index (Int.equal x) order) in
  check cb "0 first" true (pos 0 < pos 1 && pos 0 < pos 2);
  check cb "3 last" true (pos 3 > pos 1 && pos 3 > pos 2)

let test_dag_cycle () =
  let b = Dag.Builder.create 2 in
  Dag.Builder.add_edge b 0 1;
  Dag.Builder.add_edge b 1 0;
  Alcotest.check_raises "cycle rejected" (Failure "Dag: graph has a cycle")
    (fun () -> ignore (Dag.Builder.freeze b))

let test_dag_downsets () =
  let g = diamond () in
  (* downsets of the diamond: {}, {0}, {0,1}, {0,2}, {0,1,2}, {0,1,2,3} *)
  let ds = Dag.downsets g in
  check ci "diamond downset count" 6 (List.length ds);
  List.iter (fun s -> check cb "is_downset" true (Dag.is_downset g s)) ds;
  (* a chain of n nodes has n+1 downsets *)
  let chain =
    let b = Dag.Builder.create 5 in
    for i = 0 to 3 do
      Dag.Builder.add_edge b i (i + 1)
    done;
    Dag.Builder.freeze b
  in
  check ci "chain downsets" 6 (List.length (Dag.downsets chain));
  (* an antichain of n nodes has 2^n *)
  let anti = Dag.Builder.freeze (Dag.Builder.create 4) in
  check ci "antichain downsets" 16 (Dag.downset_count anti)

let test_dag_downsets_limit () =
  let anti = Dag.Builder.freeze (Dag.Builder.create 10) in
  check ci "limit respected" 100 (List.length (Dag.downsets ~limit:100 anti))

let test_dag_downsets_seq () =
  (* the lazy enumeration must reproduce the list one, element for
     element and in the same order — the exploration pipeline relies on
     this to keep crash-state numbering stable *)
  let same g =
    let xs = List.map Bitset.to_string (Dag.downsets g) in
    let ys = List.map Bitset.to_string (List.of_seq (Dag.downsets_seq g)) in
    xs = ys
  in
  check cb "diamond order identical" true (same (diamond ()));
  let anti = Dag.Builder.freeze (Dag.Builder.create 6) in
  check cb "antichain order identical" true (same anti);
  (* persistence: consuming the sequence twice yields the same elements *)
  let seq = Dag.downsets_seq (diamond ()) in
  check ci "re-consumable" (List.length (List.of_seq seq))
    (List.length (List.of_seq seq));
  (* lazy truncation: taking limit+1 elements detects overflow without
     materializing the tail *)
  let big = Dag.Builder.freeze (Dag.Builder.create 16) in
  let took = List.of_seq (Seq.take 101 (Dag.downsets_seq big)) in
  check ci "lazy cap" 101 (List.length took)

let test_dag_restrict () =
  let g = diamond () in
  let sub, mapping = Dag.restrict g [ 1; 3 ] in
  check ci "restricted size" 2 (Dag.size sub);
  check cb "edge through transitive reach" true (Dag.happens_before sub 0 1);
  check ci "mapping back" 1 mapping.(0);
  check ci "mapping back 2" 3 mapping.(1)

let test_dag_restrict_chain_fast () =
  (* restrict on a long chain produces a dense transitive closure
     (~n²/2 edges); with the builder's old List.mem duplicate check this
     was effectively cubic and took minutes at n=200 *)
  let n = 200 in
  let b = Dag.Builder.create n in
  for i = 0 to n - 2 do
    Dag.Builder.add_edge b i (i + 1)
  done;
  let g = Dag.Builder.freeze b in
  let t0 = Sys.time () in
  let sub, _ = Dag.restrict g (List.init n Fun.id) in
  let elapsed = Sys.time () -. t0 in
  check ci "restricted size" n (Dag.size sub);
  check cb "transitive edge kept" true (Dag.happens_before sub 0 (n - 1));
  check ci "first node reaches all" (n - 1) (List.length (Dag.succs sub 0));
  check cb "restrict on a 200-chain stays well under a second" true
    (elapsed < 1.0)

let test_linear_extensions () =
  let g = diamond () in
  let exts = Dag.linear_extensions g in
  check ci "diamond has 2 linear extensions" 2 (List.length exts);
  List.iter
    (fun ext ->
      check ci "extension is a permutation" 4 (List.length (List.sort_uniq Int.compare ext)))
    exts

let random_dag =
  (* edges only from lower to higher indices: always acyclic *)
  QCheck.make
    QCheck.Gen.(
      let* n = int_range 1 7 in
      let* edges =
        list_size (int_bound 12)
          (let* a = int_bound (n - 1) in
           let* b = int_bound (n - 1) in
           return (min a b, max a b))
      in
      return (n, List.filter (fun (a, b) -> a <> b) edges))

let dag_prop_downsets_closed =
  QCheck.Test.make ~name:"every enumerated downset is downward closed" ~count:200
    random_dag
    (fun (n, edges) ->
      let b = Dag.Builder.create n in
      List.iter (fun (u, v) -> Dag.Builder.add_edge b u v) edges;
      let g = Dag.Builder.freeze b in
      List.for_all (Dag.is_downset g) (Dag.downsets g))

let dag_prop_downsets_unique =
  QCheck.Test.make ~name:"downsets are pairwise distinct" ~count:200 random_dag
    (fun (n, edges) ->
      let b = Dag.Builder.create n in
      List.iter (fun (u, v) -> Dag.Builder.add_edge b u v) edges;
      let g = Dag.Builder.freeze b in
      let keys = List.map Bitset.to_string (Dag.downsets g) in
      List.length keys = List.length (List.sort_uniq String.compare keys))

let dag_prop_downsets_seq_matches_list =
  QCheck.Test.make ~name:"downsets_seq enumerates exactly downsets, in order"
    ~count:200 random_dag
    (fun (n, edges) ->
      let b = Dag.Builder.create n in
      List.iter (fun (u, v) -> Dag.Builder.add_edge b u v) edges;
      let g = Dag.Builder.freeze b in
      List.map Bitset.to_string (Dag.downsets g)
      = List.map Bitset.to_string (List.of_seq (Dag.downsets_seq g)))

let dag_prop_reach_transitive =
  QCheck.Test.make ~name:"happens-before is transitive" ~count:200 random_dag
    (fun (n, edges) ->
      let b = Dag.Builder.create n in
      List.iter (fun (u, v) -> Dag.Builder.add_edge b u v) edges;
      let g = Dag.Builder.freeze b in
      List.for_all
        (fun u ->
          List.for_all
            (fun v ->
              List.for_all
                (fun w ->
                  (not (Dag.happens_before g u v && Dag.happens_before g v w))
                  || Dag.happens_before g u w)
                (List.init n Fun.id))
            (List.init n Fun.id))
        (List.init n Fun.id))

(* --- Strutil ------------------------------------------------------------- *)

let test_strutil_contains () =
  check cb "middle" true (Strutil.contains_sub "chunk raw data of /f" "raw data");
  check cb "at start" true (Strutil.contains_sub "CORRUPT heap" "CORRUPT");
  check cb "at end" true (Strutil.contains_sub "b-tree CORRUPT" "CORRUPT");
  check cb "whole string" true (Strutil.contains_sub "abc" "abc");
  check cb "absent" false (Strutil.contains_sub "raw dat" "raw data");
  check cb "needle longer than hay" false (Strutil.contains_sub "ab" "abc");
  check cb "empty needle never matches" false (Strutil.contains_sub "abc" "");
  check cb "empty hay" false (Strutil.contains_sub "" "a");
  check cb "overlapping prefixes" true (Strutil.contains_sub "aab" "ab")

let test_strutil_find () =
  check cb "index of first hit" true (Strutil.find_sub "xabcabc" "abc" = Some 1);
  check cb "miss" true (Strutil.find_sub "xyz" "abc" = None);
  check cb "hit at 0" true (Strutil.find_sub "abc" "a" = Some 0)

let test_strutil_ends_with () =
  check cb "proper suffix" true (Strutil.ends_with "scenario|pfs" "|pfs");
  check cb "whole string" true (Strutil.ends_with "|pfs" "|pfs");
  check cb "empty suffix" true (Strutil.ends_with "abc" "");
  check cb "empty both" true (Strutil.ends_with "" "");
  check cb "suffix longer than hay" false (Strutil.ends_with "fs" "|pfs");
  check cb "prefix is not suffix" false (Strutil.ends_with "pfs|x" "pfs");
  (* the bug the driver's hand-rolled check had: a key whose *body*
     contains the layer tag must not count as carrying that suffix *)
  check cb "interior hit rejected" false
    (Strutil.ends_with "reorder|pfs|lib" "|pfs");
  check cb "bare tag without separator" false (Strutil.ends_with "libs" "|lib")

let strutil_prop_matches_naive =
  QCheck.Test.make ~name:"contains_sub agrees with a naive quadratic scan"
    ~count:500
    QCheck.(pair (string_of_size (QCheck.Gen.int_bound 12)) (string_of_size (QCheck.Gen.int_bound 4)))
    (fun (hay, needle) ->
      let nh = String.length hay and nn = String.length needle in
      let naive =
        nn > 0
        && List.exists
             (fun i -> String.sub hay i nn = needle)
             (List.init (max 0 (nh - nn + 1)) Fun.id)
      in
      Strutil.contains_sub hay needle = naive)

(* --- Combi -------------------------------------------------------------- *)

let test_combinations () =
  check ci "5 choose 2" 10 (List.length (Combi.combinations [ 1; 2; 3; 4; 5 ] 2));
  check ci "choose 0" 1 (List.length (Combi.combinations [ 1; 2 ] 0));
  check ci "choose too many" 0 (List.length (Combi.combinations [ 1 ] 2));
  check ci "upto 2 of 4" 11 (List.length (Combi.combinations_upto [ 1; 2; 3; 4 ] 2))

let test_subsets () =
  check ci "subsets of 3" 8 (List.length (Combi.subsets [ 1; 2; 3 ]));
  check ci "subsets of empty" 1 (List.length (Combi.subsets []))

let test_cartesian () =
  check ci "2x3 product" 6
    (List.length (Combi.cartesian [ [ 1; 2 ]; [ 3; 4; 5 ] ]));
  check ci "empty factor" 0 (List.length (Combi.cartesian [ [ 1 ]; [] ]))

let test_pairs () =
  check ci "pairs of 4" 6 (List.length (Combi.pairs [ 1; 2; 3; 4 ]))

let tests =
  [
    ("bitset basics", `Quick, test_bitset_basics);
    ("bitset set operations", `Quick, test_bitset_setops);
    ("bitset across word boundary", `Quick, test_bitset_wide);
    ("bitset bounds checking", `Quick, test_bitset_bounds);
    ("bitset popcount/elements pinned to naive", `Quick, test_bitset_popcount_pinned);
    ("bitset-keyed hashtable", `Quick, test_bitset_tbl);
    ("bitset pack rows (SoA)", `Quick, test_bitset_pack_rows);
    ("strutil contains_sub", `Quick, test_strutil_contains);
    ("strutil find_sub", `Quick, test_strutil_find);
    ("strutil ends_with", `Quick, test_strutil_ends_with);
    ("dag restrict on a 200-chain is fast", `Quick, test_dag_restrict_chain_fast);
    ("dag reachability", `Quick, test_dag_reach);
    ("dag topological order", `Quick, test_dag_topo);
    ("dag rejects cycles", `Quick, test_dag_cycle);
    ("dag downset enumeration", `Quick, test_dag_downsets);
    ("dag downset limit", `Quick, test_dag_downsets_limit);
    ("dag lazy downset stream", `Quick, test_dag_downsets_seq);
    ("dag restriction", `Quick, test_dag_restrict);
    ("dag linear extensions", `Quick, test_linear_extensions);
    ("combinations", `Quick, test_combinations);
    ("subsets", `Quick, test_subsets);
    ("cartesian product", `Quick, test_cartesian);
    ("unordered pairs", `Quick, test_pairs);
    QCheck_alcotest.to_alcotest bitset_prop_roundtrip;
    QCheck_alcotest.to_alcotest bitset_prop_ops_match_lists;
    QCheck_alcotest.to_alcotest bitset_prop_popcount_matches_naive;
    QCheck_alcotest.to_alcotest bitset_pack_prop_matches_pure;
    QCheck_alcotest.to_alcotest strutil_prop_matches_naive;
    QCheck_alcotest.to_alcotest dag_prop_downsets_closed;
    QCheck_alcotest.to_alcotest dag_prop_downsets_unique;
    QCheck_alcotest.to_alcotest dag_prop_downsets_seq_matches_list;
    QCheck_alcotest.to_alcotest dag_prop_reach_transitive;
  ]
