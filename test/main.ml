let () =
  Alcotest.run "paracrash"
    [
      ("util", Test_util.tests);
      ("vfs", Test_vfs.tests);
      ("trace", Test_trace.tests);
      ("blockdev", Test_blockdev.tests);
      ("striping", Test_striping.tests);
      ("core", Test_core.tests);
      ("incremental", Test_incremental.tests);
      ("digest", Test_digest.tests);
      ("scheduler", Test_scheduler.tests);
      ("rep", Test_rep.tests);
      ("pfs", Test_pfs.tests);
      ("pfs-protocols", Test_pfs_protocols.tests);
      ("hdf5", Test_hdf5.tests);
      ("integration", Test_integration.tests);
      ("genprog", Test_genprog.tests);
      ("sweep", Test_sweep.tests);
      ("mpiio", Test_mpiio.tests);
      ("checker", Test_checker.tests);
      ("runconfig", Test_runconfig.tests);
      ("fault", Test_fault.tests);
      ("report", Test_report.tests);
      ("obs", Test_obs.tests);
      ("store", Test_store.tests);
    ]
