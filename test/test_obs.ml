(* Observability subsystem: measured spans/timers/counters must never
   leak into the determinism contract (reports identical with the sink
   on or off, metrics identical at any job count), the Chrome trace
   export must be valid balanced JSON, and the typed Config merge must
   honour CLI > runconfig > default precedence. *)

module Obs = Paracrash_obs.Obs
module Metrics = Paracrash_obs.Metrics
module D = Paracrash_core.Driver
module R = Paracrash_core.Report
module Pipeline = Paracrash_core.Pipeline
module P = Paracrash_pfs
module W = Paracrash_workloads
module Registry = W.Registry
module Config = W.Config

let check = Alcotest.check
let ci = Alcotest.int
let cb = Alcotest.bool
let cs = Alcotest.string

(* --- span / timer / counter recording ------------------------------------- *)

let test_recorder_basics () =
  let sink = Obs.recorder () in
  Obs.with_sink sink (fun () ->
      Obs.span "outer" (fun () ->
          Obs.span "inner" (fun () -> Obs.add "widgets" 2);
          Obs.add "widgets" 3);
      Obs.timed "t" (fun () -> ());
      Obs.timed "t" (fun () -> ()));
  let evs = Obs.events sink in
  check ci "four span events" 4 (List.length evs);
  check cb "counter accumulated" true (Obs.counters sink = [ ("widgets", 5) ]);
  (match Obs.timers sink with
  | [ ("t", total, count) ] ->
      check ci "timer called twice" 2 count;
      check cb "timer total non-negative" true (total >= 0.)
  | l -> Alcotest.failf "expected 1 timer, got %d" (List.length l));
  (* nested spans record well-bracketed B/E pairs in order *)
  match List.map (fun e -> (e.Obs.name, e.Obs.ph)) evs with
  | [ ("outer", 'B'); ("inner", 'B'); ("inner", 'E'); ("outer", 'E') ] -> ()
  | _ -> Alcotest.fail "unexpected span event stream"

let test_noop_sink_records_nothing () =
  (* the default ambient sink is Noop: instrumented code must not
     accumulate anything *)
  check cb "ambient starts as noop" false (Obs.is_recording (Obs.current ()));
  Obs.span "s" (fun () -> Obs.add "c" 1);
  Obs.timed "t" (fun () -> ());
  check cb "noop has no events" true (Obs.events (Obs.current ()) = []);
  check cb "noop has no counters" true (Obs.counters (Obs.current ()) = [])

let test_span_balances_on_exception () =
  let sink = Obs.recorder () in
  (try
     Obs.with_sink sink (fun () ->
         Obs.span "boom" (fun () -> failwith "expected"))
   with Failure _ -> ());
  match Obs.events sink with
  | [ b; e ] ->
      check cb "B then E" true (b.Obs.ph = 'B' && e.Obs.ph = 'E');
      check cs "same name" "boom" e.Obs.name
  | l -> Alcotest.failf "expected balanced pair, got %d events" (List.length l)

let test_with_sink_restores () =
  let sink = Obs.recorder () in
  Obs.with_sink sink (fun () ->
      check cb "recording inside" true (Obs.is_recording (Obs.current ())));
  check cb "restored outside" false (Obs.is_recording (Obs.current ()))

(* --- metrics registry ------------------------------------------------------ *)

let test_metrics_registry () =
  let a = Metrics.create () in
  Metrics.add a "x" 2;
  Metrics.add a "x" 3;
  Metrics.set a "y" 7;
  Metrics.set_flag a "flag" true;
  check ci "add accumulates" 5 (Metrics.get a "x");
  check ci "untouched is 0" 0 (Metrics.get a "zzz");
  let b = Metrics.create () in
  Metrics.add b "x" 1;
  Metrics.add b "w" 4;
  Metrics.merge_into ~dst:a b;
  check cb "merge + sorted rendering" true
    (Metrics.to_list a = [ ("flag", 1); ("w", 4); ("x", 6); ("y", 7) ])

(* --- pipeline determinism --------------------------------------------------- *)

let session_of fs_entry (spec : D.spec) =
  let tracer = Paracrash_trace.Tracer.create () in
  let handle = fs_entry.Registry.make ~config:P.Config.default ~tracer in
  Paracrash_trace.Tracer.set_enabled tracer false;
  spec.D.preamble handle;
  let initial = P.Handle.snapshot handle in
  Paracrash_trace.Tracer.set_enabled tracer true;
  spec.D.test handle;
  Paracrash_trace.Tracer.set_enabled tracer false;
  Paracrash_core.Session.of_run ~handle ~initial

let det_max_cuts = 15

let metrics_of session (spec : D.spec) pname jobs =
  let options = { Pipeline.default_options with jobs; max_cuts = det_max_cuts } in
  let lib =
    Option.map (fun f -> f ~model:options.Pipeline.lib_model session) spec.D.lib
  in
  R.metrics (Pipeline.run options ~session ~lib ~workload:pname)

let render_metrics ms =
  String.concat ";" (List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v) ms)

let metrics_deterministic fs_names () =
  List.iter
    (fun fs_name ->
      let fs_entry = Option.get (Registry.find_fs fs_name) in
      List.iter
        (fun pname ->
          let spec = Option.get (Registry.find_workload pname) in
          let session = session_of fs_entry spec in
          let serial = render_metrics (metrics_of session spec pname 1) in
          check cb (pname ^ "/" ^ fs_name ^ " metrics non-empty") true
            (serial <> "");
          List.iter
            (fun jobs ->
              check cs
                (Printf.sprintf "%s/%s metrics jobs=%d" pname fs_name jobs)
                serial
                (render_metrics (metrics_of session spec pname jobs)))
            [ 2; 4 ])
        Registry.workload_names)
    fs_names

let test_metrics_deterministic_quick = metrics_deterministic [ "beegfs" ]

let test_metrics_deterministic_all =
  metrics_deterministic
    (List.map (fun e -> e.Registry.fs_name) Registry.file_systems)

let test_sim_matches_serial_measured () =
  (* the canonical emulator-cache counters published in the metrics must
     equal what the serial optimized run actually measured *)
  let fs_entry = Option.get (Registry.find_fs "beegfs") in
  List.iter
    (fun pname ->
      let spec = Option.get (Registry.find_workload pname) in
      let session = session_of fs_entry spec in
      let options =
        { Pipeline.default_options with jobs = 1; max_cuts = det_max_cuts }
      in
      let lib =
        Option.map (fun f -> f ~model:options.Pipeline.lib_model session)
          spec.D.lib
      in
      let r = Pipeline.run options ~session ~lib ~workload:pname in
      check ci
        (pname ^ " sim misses == measured serial restarts")
        (R.stats r).R.restarts
        (Option.get (R.metric r "emulator.cache_misses")))
    [ "ARVR"; "H5-create" ]

let test_recording_does_not_change_report () =
  (* running with a live recorder must leave the report byte-identical
     (modulo wall clock) to the noop-sink run: observation never feeds
     back into exploration *)
  let fs_entry = Option.get (Registry.find_fs "beegfs") in
  let spec = Option.get (Registry.find_workload "ARVR") in
  let session = session_of fs_entry spec in
  let run () =
    let options =
      { Pipeline.default_options with jobs = 2; max_cuts = det_max_cuts }
    in
    let r = Pipeline.run options ~session ~lib:None ~workload:"ARVR" in
    R.to_json
      {
        r with
        R.perf =
          { r.R.perf with wall_seconds = 0.; modeled_seconds = 0.; restarts = 0 };
      }
  in
  let quiet = run () in
  let sink = Obs.recorder () in
  let recorded = Obs.with_sink sink run in
  check cs "report unchanged under recording" quiet recorded;
  check cb "something was recorded" true (Obs.events sink <> [])

(* --- exporters ------------------------------------------------------------- *)

let test_trace_json_valid_and_balanced () =
  let fs_entry = Option.get (Registry.find_fs "beegfs") in
  let spec = Option.get (Registry.find_workload "ARVR") in
  let sink = Obs.recorder () in
  let _ =
    Obs.with_sink sink (fun () ->
        let options =
          { D.default_options with jobs = 2; max_cuts = det_max_cuts }
        in
        D.run ~options ~config:P.Config.default ~make_fs:fs_entry.Registry.make
          spec)
  in
  let j = Test_report.parse (Obs.trace_json sink) in
  let evs = Test_report.as_list (Test_report.field j "traceEvents") in
  check cb "trace has events" true (evs <> []);
  (* every B is closed by an E of the same name; instant events pass through *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let name = Test_report.as_str (Test_report.field e "name") in
      let prev = Option.value (Hashtbl.find_opt tbl name) ~default:0 in
      match Test_report.as_str (Test_report.field e "ph") with
      | "B" -> Hashtbl.replace tbl name (prev + 1)
      | "E" -> Hashtbl.replace tbl name (prev - 1)
      | "i" -> ()
      | ph -> Alcotest.failf "unexpected phase %S" ph)
    evs;
  Hashtbl.iter
    (fun name bal ->
      check ci (Printf.sprintf "span %S balanced" name) 0 bal)
    tbl;
  (* timestamps are non-negative microseconds *)
  List.iter
    (fun e ->
      check cb "ts >= 0" true
        (match Test_report.field e "ts" with
        | Test_report.Num f -> f >= 0.
        | _ -> false))
    evs

let test_deadline_partial_keeps_metrics () =
  (* a deadline-expired run still flushes its metrics (and spans): the
     partial report carries the same deterministic counter keys *)
  let fs_entry = Option.get (Registry.find_fs "beegfs") in
  let spec = Option.get (Registry.find_workload "ARVR") in
  let session = session_of fs_entry spec in
  let options =
    {
      Pipeline.default_options with
      deadline = Some 0.;
      max_cuts = det_max_cuts;
    }
  in
  let sink = Obs.recorder () in
  let r =
    Obs.with_sink sink (fun () ->
        Pipeline.run options ~session ~lib:None ~workload:"ARVR")
  in
  check cb "partial" true (R.is_partial r);
  check cb "metrics present" true (R.metrics r <> []);
  check cb "states.checked key present" true
    (R.metric r "states.checked" <> None);
  check ci "nothing checked under 0s deadline" 0
    (Option.get (R.metric r "states.checked"));
  check cb "spans recorded despite deadline" true (Obs.events sink <> [])

(* --- Config merge precedence ----------------------------------------------- *)

let runconfig_text = "fs = lustre\nprogram = H5-create\njobs = 3\nstripe = 65536\n"

let test_config_merge_precedence () =
  let rc = Result.get_ok (W.Runconfig.parse runconfig_text) in
  let base = Config.of_runconfig rc in
  (* no CLI flags: the runconfig wins over the defaults *)
  let merged = Result.get_ok (Config.merge base ~overrides:Config.no_overrides) in
  check cs "runconfig fs beats default" "lustre" merged.Config.fs;
  check cs "runconfig program beats default" "H5-create" merged.Config.program;
  check ci "runconfig jobs beat default" 3 merged.Config.options.D.jobs;
  check ci "runconfig stripe beats default" 65536
    merged.Config.pfs.P.Config.stripe_size;
  (* untouched knobs keep their defaults *)
  check ci "default k survives" D.default_options.D.k
    merged.Config.options.D.k;
  (* CLI flags beat the runconfig per knob *)
  let overrides =
    {
      Config.no_overrides with
      Config.o_fs = Some "gpfs";
      o_jobs = Some 2;
      o_mode = Some "pruning";
    }
  in
  let merged = Result.get_ok (Config.merge base ~overrides) in
  check cs "CLI fs beats runconfig" "gpfs" merged.Config.fs;
  check ci "CLI jobs beat runconfig" 2 merged.Config.options.D.jobs;
  check cb "CLI mode parsed" true (merged.Config.options.D.mode = D.Pruned);
  check cs "unoverridden program stays from runconfig" "H5-create"
    merged.Config.program;
  check ci "unoverridden stripe stays from runconfig" 65536
    merged.Config.pfs.P.Config.stripe_size

let test_config_merge_validates () =
  let bad name overrides =
    match Config.merge Config.default ~overrides with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s should have been rejected" name
  in
  bad "unknown fs"
    { Config.no_overrides with Config.o_fs = Some "nope" };
  bad "unknown program"
    { Config.no_overrides with Config.o_program = Some "nope" };
  bad "unknown mode"
    { Config.no_overrides with Config.o_mode = Some "warp" };
  bad "unknown model"
    { Config.no_overrides with Config.o_pfs_model = Some "psychic" };
  bad "bad fault class"
    { Config.no_overrides with Config.o_faults = Some "gamma-rays" };
  bad "jobs < 1" { Config.no_overrides with Config.o_jobs = Some 0 };
  (* servers are split evenly like the runconfig 'servers' key *)
  let merged =
    Result.get_ok
      (Config.merge Config.default
         ~overrides:{ Config.no_overrides with Config.o_servers = Some 5 })
  in
  check ci "meta servers" 2 merged.Config.pfs.P.Config.n_meta;
  check ci "storage servers" 3 merged.Config.pfs.P.Config.n_storage

let test_config_programs_and_run () =
  let all =
    Result.get_ok
      (Config.merge Config.default
         ~overrides:{ Config.no_overrides with Config.o_program = Some "all" })
  in
  check cb "'all' expands to the registry" true
    (Config.programs all = Registry.workload_names);
  check cb "single program" true (Config.programs Config.default = [ "ARVR" ]);
  let report, _session = Config.run Config.default "ARVR" in
  check cs "run executes the requested workload" "ARVR" report.R.workload;
  check cs "on the configured fs" "beegfs" report.R.fs

let tests =
  [
    ("recorder: spans, timers, counters", `Quick, test_recorder_basics);
    ("noop sink records nothing", `Quick, test_noop_sink_records_nothing);
    ("span balances on exception", `Quick, test_span_balances_on_exception);
    ("with_sink restores ambient", `Quick, test_with_sink_restores);
    ("metrics registry", `Quick, test_metrics_registry);
    ( "metrics deterministic across jobs (beegfs)",
      `Quick,
      test_metrics_deterministic_quick );
    ( "metrics deterministic across jobs (all fs)",
      `Slow,
      test_metrics_deterministic_all );
    ( "canonical cache counters equal serial measured",
      `Quick,
      test_sim_matches_serial_measured );
    ( "recording does not change the report",
      `Quick,
      test_recording_does_not_change_report );
    ("chrome trace is valid and balanced", `Quick, test_trace_json_valid_and_balanced);
    ("deadline-partial report keeps metrics", `Quick, test_deadline_partial_keeps_metrics);
    ("config merge precedence", `Quick, test_config_merge_precedence);
    ("config merge validation", `Quick, test_config_merge_validates);
    ("config programs and run", `Quick, test_config_programs_and_run);
  ]
