(* Bounded-sweep tests: enumeration sizes, outcome fingerprints,
   corpus torn-tail repair, interrupted-resume equivalence and
   jobs-independence of the sweep's journal. *)

module D = Paracrash_core.Driver
module Sweep = Paracrash_core.Sweep
module W = Paracrash_workloads
module Vocab = W.Vocab
module Prog = W.Prog
module Registry = W.Registry

let check = Alcotest.check
let cb = Alcotest.bool
let ci = Alcotest.int
let cs = Alcotest.string

let tmpdir () =
  let d = Filename.temp_file "paracrash-sweep" "" in
  Sys.remove d;
  Sys.mkdir d 0o755;
  d

let journal dir =
  In_channel.with_open_bin (Filename.concat dir "journal") In_channel.input_all

let spec s = Option.get (Vocab.spec_of_string s)

(* --- enumeration sizes ---------------------------------------------------- *)

(* The bounded vocabularies give exactly these scenario counts; a change
   here means the vocabulary (and every corpus built on it) changed. *)
let test_enumeration_counts () =
  let n s = Vocab.count (spec s) in
  check ci "posix-seq1" 12 (n "posix-seq1");
  check ci "hdf5-seq1" 18 (n "hdf5-seq1");
  check ci "seq1" 30 (n "seq1");
  check ci "posix-seq2" 143 (n "posix-seq2");
  check ci "hdf5-seq2" 282 (n "hdf5-seq2")

let test_enumeration_deterministic () =
  let ids s = List.map Prog.id (List.of_seq (Vocab.enumerate (spec s))) in
  check (Alcotest.list cs) "same order twice" (ids "posix-seq1")
    (ids "posix-seq1");
  (* seq-1 programs are pairwise distinct *)
  let l = ids "seq1" in
  check ci "no duplicate ids" (List.length l)
    (List.length (List.sort_uniq compare l))

(* --- the registry as Prog.t ----------------------------------------------- *)

let run_report ?(jobs = 1) fs_name s =
  let fs = Option.get (Registry.find_fs fs_name) in
  let options = { D.default_options with D.jobs } in
  fst
    (D.run ~options ~config:Paracrash_pfs.Config.default
       ~make_fs:fs.Registry.make s)

let test_registry_programs () =
  let progs = Registry.programs () in
  check ci "the paper's 11 programs" 11 (List.length progs);
  check (Alcotest.list cs) "workload_names = program ids"
    Registry.workload_names
    (List.map Prog.id progs);
  List.iter
    (fun p ->
      match Registry.find_program (Prog.id p) with
      | None -> Alcotest.failf "find_program %s" (Prog.id p)
      | Some q ->
          check cs "find_program name" (Prog.id p) (Prog.id q);
          let s = Option.get (Registry.find_workload (Prog.id p)) in
          check cs "find_workload compiles the program" (Prog.id p) s.D.name)
    progs

(* Outcome fingerprints are the sweep's dedup key: for every registry
   program they must be identical across job counts (restarts and wall
   time are excluded) and across repeated runs. *)
let registry_fingerprints_on fs_names =
  List.iter
    (fun fs_name ->
      List.iter
        (fun p ->
          let s = Prog.to_spec p in
          let fp jobs =
            (Sweep.outcome_of_report (run_report ~jobs fs_name s))
              .Sweep.fingerprint
          in
          let f1 = fp 1 in
          let label = fs_name ^ "/" ^ Prog.id p in
          check ci "32 hex chars" 32 (String.length f1);
          check cs (label ^ " jobs 1 = jobs 4") f1 (fp 4);
          check cs (label ^ " stable across runs") f1 (fp 1))
        (Registry.programs ()))
    fs_names

let test_registry_fingerprints_jobs_independent () =
  registry_fingerprints_on [ "beegfs" ]

(* the full parity matrix: every registry program on every file system *)
let test_registry_fingerprints_all_fs () =
  registry_fingerprints_on
    (List.map
       (fun e -> e.Registry.fs_name)
       (List.filter (fun e -> e.Registry.fs_name <> "beegfs")
          Registry.file_systems))

(* --- the corpus journal --------------------------------------------------- *)

let o32 c ~bugs ~inconsistent =
  { Sweep.fingerprint = String.make 32 c; bugs; inconsistent }

let test_corpus_torn_tail_repair () =
  let d = tmpdir () in
  let c = Sweep.Corpus.open_ ~dir:d ~header:"sweep test" in
  Sweep.Corpus.record c "a" (o32 '0' ~bugs:0 ~inconsistent:0);
  Sweep.Corpus.record c "b" (o32 '1' ~bugs:1 ~inconsistent:2);
  Sweep.Corpus.close c;
  (* simulate a crash mid-append: a torn final line, no newline *)
  let oc =
    open_out_gen [ Open_append; Open_binary ] 0 (Filename.concat d "journal")
  in
  output_string oc "c 0123";
  close_out oc;
  let c = Sweep.Corpus.open_ ~dir:d ~header:"sweep test" in
  check ci "torn line dropped" 2 (Sweep.Corpus.cardinal c);
  check cb "complete entry survives" true (Sweep.Corpus.mem c "b");
  check cb "torn entry gone" false (Sweep.Corpus.mem c "c");
  (match Sweep.Corpus.find c "b" with
  | None -> Alcotest.fail "find b"
  | Some o ->
      check ci "bugs round-trip" 1 o.Sweep.bugs;
      check ci "inconsistent round-trip" 2 o.Sweep.inconsistent);
  (* appending after the repair yields a clean journal again *)
  Sweep.Corpus.record c "d" (o32 '2' ~bugs:0 ~inconsistent:1);
  Sweep.Corpus.close c;
  let c = Sweep.Corpus.open_ ~dir:d ~header:"sweep test" in
  check ci "repair then append" 3 (Sweep.Corpus.cardinal c);
  Sweep.Corpus.close c

let test_corpus_header_mismatch () =
  let d = tmpdir () in
  let c = Sweep.Corpus.open_ ~dir:d ~header:"sweep posix-seq1" in
  Sweep.Corpus.close c;
  match Sweep.Corpus.open_ ~dir:d ~header:"sweep hdf5-seq1" with
  | exception Failure _ -> ()
  | c ->
      Sweep.Corpus.close c;
      Alcotest.fail "expected a header mismatch failure"

(* --- sweeps --------------------------------------------------------------- *)

let sweep_cfg ?(jobs = 1) corpus =
  let d = W.Config.default in
  {
    d with
    W.Config.fs = "beegfs";
    sweep = Some "posix-seq1";
    corpus = Some corpus;
    options = { d.W.Config.options with D.jobs };
  }

(* An interrupted sweep (killed after 5 programs) resumed to completion
   leaves a journal byte-identical to an uninterrupted sweep's. *)
let test_resume_equivalence () =
  let da = tmpdir () in
  let sa = W.Config.run_sweep (sweep_cfg da) in
  check ci "uninterrupted checked" 12 sa.Sweep.stats.Sweep.checked;
  let db = tmpdir () in
  let cfg = sweep_cfg db in
  let c = Sweep.Corpus.open_ ~dir:db ~header:"sweep posix-seq1" in
  let prefix = List.of_seq (Seq.take 5 (W.Config.sweep_programs cfg)) in
  ignore
    (Sweep.run ~corpus:c ~sweep:"posix-seq1" ~corpus_dir:(Some db)
       (List.to_seq prefix));
  Sweep.Corpus.close c;
  let sb = W.Config.run_sweep cfg in
  check ci "resume skips the prefix" 5 sb.Sweep.stats.Sweep.corpus_hits;
  check ci "resume checks the rest" 7 sb.Sweep.stats.Sweep.checked;
  check ci "same distinct outcomes" sa.Sweep.stats.Sweep.outcomes
    sb.Sweep.stats.Sweep.outcomes;
  check cs "journals byte-identical" (journal da) (journal db)

(* The journal (ids and fingerprints) is independent of --jobs. *)
let test_sweep_jobs_independent () =
  let run jobs =
    let d = tmpdir () in
    let s = W.Config.run_sweep (sweep_cfg ~jobs d) in
    (s, journal d)
  in
  let s1, j1 = run 1 in
  let s4, j4 = run 4 in
  check ci "programs agree" s1.Sweep.stats.Sweep.programs
    s4.Sweep.stats.Sweep.programs;
  check ci "bug programs agree" s1.Sweep.stats.Sweep.bug_programs
    s4.Sweep.stats.Sweep.bug_programs;
  check cs "journals byte-identical across jobs" j1 j4

let tests =
  [
    ("bounded enumeration counts", `Quick, test_enumeration_counts);
    ("enumeration order is deterministic", `Quick, test_enumeration_deterministic);
    ("registry programs are Prog.t", `Quick, test_registry_programs);
    ( "registry fingerprints jobs-independent",
      `Quick,
      test_registry_fingerprints_jobs_independent );
    ( "registry fingerprints jobs-independent (all fs)",
      `Slow,
      test_registry_fingerprints_all_fs );
    ("corpus torn-tail repair", `Quick, test_corpus_torn_tail_repair);
    ("corpus header mismatch rejected", `Quick, test_corpus_header_mismatch);
    ("interrupted sweep resumes byte-identically", `Quick, test_resume_equivalence);
    ("sweep journal jobs-independent", `Quick, test_sweep_jobs_independent);
  ]
